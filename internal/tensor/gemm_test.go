package tensor

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// sparseMatrix returns a rows x cols matrix where roughly zeroFrac of the
// entries are exactly zero — the shape of real spike-probability panels.
func sparseMatrix(src *rng.PCG32, rows, cols int, zeroFrac float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if rng.Float64(src) < zeroFrac {
			continue
		}
		m.Data[i] = rng.Float64(src)*2 - 1
	}
	return m
}

// strided returns a matrix with Stride > Cols holding the same elements as
// m, to exercise the non-compact (view) code paths of every kernel.
func strided(m *Matrix) *Matrix {
	backing := New(m.Rows+2, m.Cols+3)
	for i := range backing.Data {
		backing.Data[i] = math.NaN() // poison so out-of-view writes are caught
	}
	v := backing.View(1, 2, m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		copy(v.Row(r), m.Row(r))
	}
	return v
}

func TestViewAliasesParent(t *testing.T) {
	m := New(4, 5)
	v := m.View(1, 2, 2, 3)
	if v.Rows != 2 || v.Cols != 3 || v.Stride != 5 {
		t.Fatalf("view geometry %dx%d stride %d", v.Rows, v.Cols, v.Stride)
	}
	v.Set(0, 0, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("view write not visible in parent")
	}
	if m.View(0, 0, 0, 3).Rows != 0 {
		t.Fatal("empty view broken")
	}
}

func TestViewPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3, 3).View(1, 1, 3, 2)
}

// TestGemmTilingEdges checks every kernel on dimensions straddling the tile
// sizes (non-multiples, exact multiples, degenerate 1xN / Nx1) against
// naive ascending-k accumulation, requiring exact equality. Inputs include
// strided views for every operand.
func TestGemmTilingEdges(t *testing.T) {
	src := rng.NewPCG32(11, 1)
	dims := []int{1, 2, 3, gemmRowTile - 1, gemmRowTile, gemmRowTile + 1, gemmColTile - 1, gemmColTile, gemmColTile + 1}
	for _, m := range dims {
		for _, k := range dims {
			for _, n := range dims {
				if m*k*n > 1<<21 { // keep the cube tractable
					continue
				}
				a := sparseMatrix(src, m, k, 0.3)
				b := sparseMatrix(src, k, n, 0.3)
				bt := sparseMatrix(src, n, k, 0.3)
				at := sparseMatrix(src, k, m, 0.3)

				want := naiveGemm(a, b)
				got := New(m, n)
				Gemm(got, a, b)
				checkExact(t, "Gemm", got, want, m, k, n)
				gotV := strided(New(m, n))
				Gemm(gotV, strided(a), strided(b))
				checkExact(t, "Gemm/strided", gotV, want, m, k, n)

				wantT := naiveGemm(a, transpose(bt))
				gotT := New(m, n)
				GemmT(gotT, a, bt)
				checkExact(t, "GemmT", gotT, wantT, m, k, n)
				gotT = strided(New(m, n))
				GemmT(gotT, strided(a), strided(bt))
				checkExact(t, "GemmT/strided", gotT, wantT, m, k, n)

				wantAT := naiveGemm(transpose(at), b)
				gotAT := New(m, n)
				GemmAT(gotAT, at, b)
				checkExact(t, "GemmAT", gotAT, wantAT, m, k, n)
				gotAT = strided(New(m, n))
				GemmAT(gotAT, strided(at), strided(b))
				checkExact(t, "GemmAT/strided", gotAT, wantAT, m, k, n)
			}
		}
	}
}

// naiveGemm is the reference: plain ascending-k accumulation per element.
func naiveGemm(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}

func checkExact(t *testing.T, kernel string, got, want *Matrix, m, k, n int) {
	t.Helper()
	for r := 0; r < want.Rows; r++ {
		for c := 0; c < want.Cols; c++ {
			if got.At(r, c) != want.At(r, c) {
				t.Fatalf("%s (%dx%dx%d): element (%d,%d) = %v, want %v", kernel, m, k, n, r, c, got.At(r, c), want.At(r, c))
			}
		}
	}
}

// TestGemmMatchesMatVecRowByRow is the property pin of the bit-exactness
// contract: for random shapes, Gemm against a column vector equals MatVec
// per row EXACTLY (not within tolerance), GemmT rows equal MatVec dots with
// the transposed operand, and accumulating variants continue the chains.
func TestGemmMatchesMatVecRowByRow(t *testing.T) {
	src := rng.NewPCG32(29, 2)
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(src, 70)
		k := 1 + rng.Intn(src, 160)
		a := sparseMatrix(src, m, k, 0.4)
		x := make([]float64, k)
		for i := range x {
			if rng.Float64(src) < 0.4 {
				continue
			}
			x[i] = rng.Float64(src)*2 - 1
		}
		// Gemm with a k x 1 column: dst column r == MatVec(a, x)[r].
		col := FromSlice(k, 1, x)
		got := New(m, 1)
		Gemm(got, a, col)
		want := make([]float64, m)
		MatVec(want, a, x)
		for r := 0; r < m; r++ {
			if got.At(r, 0) != want[r] {
				t.Fatalf("trial %d: Gemm row %d = %v, MatVec %v", trial, r, got.At(r, 0), want[r])
			}
		}
		// GemmT with a 1 x k row operand: dst row i has MatVec dot chains.
		xrow := FromSlice(1, k, x)
		gotT := New(1, m)
		GemmT(gotT, xrow, a)
		for j := 0; j < m; j++ {
			var s float64
			arow := a.Row(j)
			for i, v := range x {
				s += v * arow[i]
			}
			if gotT.At(0, j) != s {
				t.Fatalf("trial %d: GemmT col %d = %v, dot %v", trial, j, gotT.At(0, j), s)
			}
		}
		// GemmATAcc over sample rows == sequential OuterAcc calls.
		s := 1 + rng.Intn(src, 9)
		n := 1 + rng.Intn(src, 40)
		da := sparseMatrix(src, s, m, 0.5)
		xb := sparseMatrix(src, s, n, 0.4)
		gotA := sparseMatrix(src, m, n, 0.3)
		wantA := gotA.Clone()
		GemmATAcc(gotA, da, xb)
		for r := 0; r < s; r++ {
			OuterAcc(wantA, 1, da.Row(r), xb.Row(r))
		}
		checkExact(t, "GemmATAcc vs OuterAcc", gotA, wantA, m, s, n)
	}
}

func TestGemmAccContinuesChain(t *testing.T) {
	src := rng.NewPCG32(5, 5)
	a := sparseMatrix(src, 7, 13, 0.3)
	b := sparseMatrix(src, 13, 9, 0.3)
	seed := sparseMatrix(src, 7, 9, 0)
	got := seed.Clone()
	GemmAcc(got, a, b)
	want := seed.Clone()
	for i := 0; i < 7; i++ {
		for j := 0; j < 9; j++ {
			s := want.At(i, j)
			for k := 0; k < 13; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	checkExact(t, "GemmAcc", got, want, 7, 13, 9)
	gotT := seed.Clone()
	GemmTAcc(gotT, a, transpose(b))
	checkExact(t, "GemmTAcc", gotT, want, 7, 13, 9)
}

func TestGemmPanicsOnShape(t *testing.T) {
	for name, f := range map[string]func(){
		"Gemm":   func() { Gemm(New(2, 2), New(2, 3), New(2, 2)) },
		"GemmT":  func() { GemmT(New(2, 2), New(2, 3), New(2, 4)) },
		"GemmAT": func() { GemmAT(New(2, 2), New(3, 2), New(4, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBatchedElementwiseHelpers(t *testing.T) {
	m := FromSlice(2, 3, []float64{-1, 0, 2, 3, -4, 5})
	AddRowVec(m, []float64{1, 1, 1})
	want := []float64{0, 1, 3, 4, -3, 6}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("AddRowVec: %v", m.Data)
		}
	}
	sums := []float64{1, 2, 3}
	ColSumAcc(sums, m)
	if sums[0] != 1+0+4 || sums[1] != 2+1-3 || sums[2] != 3+3+6 {
		t.Fatalf("ColSumAcc: %v", sums)
	}
	Relu(m)
	if m.At(1, 1) != 0 || m.At(0, 0) != 0 || m.At(1, 2) != 6 {
		t.Fatalf("Relu: %v", m.Data)
	}

	d := FromSlice(2, 2, []float64{1, 2, 3, 4})
	act := FromSlice(2, 2, []float64{0.5, 0, -1, 2})
	ReluBackward(d, act)
	if d.At(0, 0) != 1 || d.At(0, 1) != 0 || d.At(1, 0) != 0 || d.At(1, 1) != 4 {
		t.Fatalf("ReluBackward: %v", d.Data)
	}

	logits := FromSlice(2, 3, []float64{1, 2, 3, 0, 0, 0})
	probs := New(2, 3)
	SoftmaxRows(probs, logits)
	for r := 0; r < 2; r++ {
		want := make([]float64, 3)
		Softmax(want, logits.Row(r))
		for i, v := range want {
			if probs.At(r, i) != v {
				t.Fatalf("SoftmaxRows row %d: %v", r, probs.Row(r))
			}
		}
	}
	SubOneHot(probs, []int{2, 0})
	if probs.At(0, 2) >= 0 || probs.At(1, 0) >= 0 {
		t.Fatalf("SubOneHot did not subtract: %v", probs.Data)
	}

	srcM := FromSlice(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	dst := New(2, 3)
	GatherCols(dst, srcM, []int{3, 0, 2})
	if dst.At(0, 0) != 4 || dst.At(0, 1) != 1 || dst.At(1, 2) != 7 {
		t.Fatalf("GatherCols: %v", dst.Data)
	}
}

// ---------------------------------------------------------- spike kernels --

// refSpikeForward replicates the per-sample forwardCore loop from nn
// verbatim: Eq. (9)/(14)/(11) with the x==0 || w==0 skip.
func refSpikeForward(mu, sigma, act, x, w *Matrix, bias []float64, cmax, sigmaFloor, muOffset float64) {
	floor2 := sigmaFloor * sigmaFloor
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		for j := 0; j < w.Rows; j++ {
			row := w.Row(j)
			m := bias[j]
			v := floor2
			for i, wv := range row {
				xv := in[i]
				if xv == 0 || wv == 0 {
					continue
				}
				m += wv * xv
				aw := math.Abs(wv)
				v += aw * xv * (cmax - aw*xv)
			}
			m += muOffset
			mu.Set(s, j, m)
			sg := math.Sqrt(v)
			sigma.Set(s, j, sg)
			act.Set(s, j, SpikeProb(m, sg))
		}
	}
}

// refSpikeBackward replicates the per-sample backward core loop from nn
// verbatim, sample-major with the da == 0 skip.
func refSpikeBackward(dact, mu, sigma, x, w, gw *Matrix, gbias []float64, dIn *Matrix, idx []int, cmax float64, sigmaConst bool) {
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		for j := 0; j < w.Rows; j++ {
			da := dact.At(s, j)
			if da == 0 {
				continue
			}
			m, sg := mu.At(s, j), sigma.At(s, j)
			dMu, dSigma := SpikeProbGrad(m, sg)
			gMu := da * dMu
			var gVar float64
			if !sigmaConst && sg > 0 {
				gVar = da * dSigma / (2 * sg)
			}
			gbias[j] += gMu
			row := w.Row(j)
			grow := gw.Row(j)
			for i := range idx {
				xv := in[i]
				wv := row[i]
				aw := math.Abs(wv)
				sw := sign(wv)
				grow[i] += gMu*xv + gVar*sw*xv*(cmax-2*aw*xv)
				if dIn != nil {
					dIn.Row(s)[idx[i]] += gMu*wv + gVar*aw*(cmax-2*aw*xv)
				}
			}
		}
	}
}

// TestSpikeKernelsMatchReference cross-checks the batched spike kernels
// against the per-sample reference loops over randomized cores, requiring
// exact equality. Covers dense and sparse inputs (both sides of the
// compaction threshold), zero weights, strided output views, sigmaConst,
// muOffset, zero sigma floors, batch sizes 0/1/n, and nil scratch.
func TestSpikeKernelsMatchReference(t *testing.T) {
	src := rng.NewPCG32(77, 3)
	for trial := 0; trial < 60; trial++ {
		batch := rng.Intn(src, 9)           // 0..8
		axons := 1 + rng.Intn(src, 40)      // 1..40
		nr := 1 + rng.Intn(src, 24)         // 1..24
		zeroFrac := rng.Float64(src) * 1.05 // sometimes fully dense
		cmax := 1 + rng.Float64(src)
		sigmaFloor := 0.0
		if rng.Bernoulli(src, 0.7) {
			sigmaFloor = 1e-3
		}
		muOffset := 0.0
		if rng.Bernoulli(src, 0.5) {
			muOffset = 0.5
		}
		sigmaConst := rng.Bernoulli(src, 0.3)

		x := New(batch, axons)
		for i := range x.Data {
			if rng.Float64(src) < zeroFrac {
				continue
			}
			x.Data[i] = rng.Float64(src)
		}
		w := sparseMatrix(src, nr, axons, 0.1)
		for i := range w.Data {
			w.Data[i] *= cmax
		}
		bias := make([]float64, nr)
		for i := range bias {
			bias[i] = rng.Float64(src) - 0.5
		}

		var scr *SpikeScratch
		if rng.Bernoulli(src, 0.5) {
			scr = NewSpikeScratch(batch, axons)
		}

		mu, sigma, act := New(batch, nr), New(batch, nr), New(batch, nr)
		refSpikeForward(mu, sigma, act, x, w, bias, cmax, sigmaFloor, muOffset)
		muB := strided(New(batch, nr))
		sigmaB := strided(New(batch, nr))
		actB := strided(New(batch, nr))
		SpikeForwardBatch(muB, sigmaB, actB, x, w, bias, cmax, sigmaFloor, muOffset, scr)
		for s := 0; s < batch; s++ {
			for j := 0; j < nr; j++ {
				if muB.At(s, j) != mu.At(s, j) || sigmaB.At(s, j) != sigma.At(s, j) || actB.At(s, j) != act.At(s, j) {
					t.Fatalf("trial %d: forward (%d,%d) batched (%v,%v,%v) vs ref (%v,%v,%v)", trial, s, j,
						muB.At(s, j), sigmaB.At(s, j), actB.At(s, j), mu.At(s, j), sigma.At(s, j), act.At(s, j))
				}
			}
		}

		// Backward: random upstream gradients with exact zeros, and a
		// scatter map with a random offset (layer input wider than the core).
		dact := sparseMatrix(src, batch, nr, 0.3)
		inDim := axons + rng.Intn(src, 5)
		idx := rng.Perm(src, inDim)[:axons]
		withDIn := rng.Bernoulli(src, 0.5)

		gwRef, gwBatch := New(nr, axons), New(nr, axons)
		gbRef, gbBatch := make([]float64, nr), make([]float64, nr)
		var dInRef, dInBatch *Matrix
		if withDIn {
			dInRef, dInBatch = New(batch, inDim), New(batch, inDim)
		}
		refSpikeBackward(dact, mu, sigma, x, w, gwRef, gbRef, dInRef, idx, cmax, sigmaConst)
		SpikeBackwardBatch(dact, muB, sigmaB, x, w, gwBatch, gbBatch, dInBatch, idx, cmax, sigmaConst, scr)
		for i := range gwRef.Data {
			if gwBatch.Data[i] != gwRef.Data[i] {
				t.Fatalf("trial %d: gw[%d] = %v, ref %v", trial, i, gwBatch.Data[i], gwRef.Data[i])
			}
		}
		for j := range gbRef {
			if gbBatch[j] != gbRef[j] {
				t.Fatalf("trial %d: gbias[%d] = %v, ref %v", trial, j, gbBatch[j], gbRef[j])
			}
		}
		if withDIn {
			for i := range dInRef.Data {
				if dInBatch.Data[i] != dInRef.Data[i] {
					t.Fatalf("trial %d: dIn[%d] = %v, ref %v", trial, i, dInBatch.Data[i], dInRef.Data[i])
				}
			}
		}
	}
}

func BenchmarkGemmT(b *testing.B) {
	src := rng.NewPCG32(1, 1)
	a := sparseMatrix(src, 32, 784, 0.35)
	w := sparseMatrix(src, 300, 784, 0)
	dst := New(32, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmT(dst, a, w)
	}
}

func BenchmarkSpikeForwardBatch(b *testing.B) {
	src := rng.NewPCG32(1, 1)
	x := sparseMatrix(src, 8, 256, 0.35)
	for i := range x.Data {
		x.Data[i] = math.Abs(x.Data[i])
	}
	w := sparseMatrix(src, 256, 256, 0)
	bias := make([]float64, 256)
	mu, sigma, act := New(8, 256), New(8, 256), New(8, 256)
	scr := NewSpikeScratch(8, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpikeForwardBatch(mu, sigma, act, x, w, bias, 1, 1e-3, 0, scr)
	}
}
