// Package tensor implements the small dense linear-algebra kernel used by the
// training framework and the experiment harness.
//
// Only float64 matrices are provided; the workloads in this reproduction are
// small (per-core 256x256 blocks) and memory bandwidth, not precision, is the
// limit. Matrices are row-major with an explicit stride so sub-views are cheap.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// New allocates a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols, row-major) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: data}
}

// View returns the rows x cols sub-matrix starting at (r0, c0), aliasing the
// receiver's storage (Stride is inherited, so the view is generally
// non-compact). Mutations through the view are visible in the parent.
// View is kept small enough to inline so that hot-loop views of scratch
// panels stay on the caller's stack instead of allocating.
func (m *Matrix) View(r0, c0, rows, cols int) *Matrix {
	if r0 < 0 || c0 < 0 || rows < 0 || cols < 0 || r0+rows > m.Rows || c0+cols > m.Cols {
		viewPanic(m, r0, c0, rows, cols)
	}
	if rows == 0 || cols == 0 {
		return &Matrix{Rows: rows, Cols: cols, Stride: m.Stride}
	}
	lo := r0*m.Stride + c0
	return &Matrix{Rows: rows, Cols: cols, Stride: m.Stride, Data: m.Data[lo : (r0+rows-1)*m.Stride+c0+cols]}
}

func viewPanic(m *Matrix, r0, c0, rows, cols int) {
	panic(fmt.Sprintf("tensor: View [%d:%d, %d:%d] outside %dx%d", r0, r0+rows, c0, c0+cols, m.Rows, m.Cols))
}

// At returns element (r,c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Stride+c] }

// Set assigns element (r,c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Stride+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Stride : r*m.Stride+m.Cols] }

// Clone returns a deep copy with compact stride.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r))
	}
	return out
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := range row {
			row[i] = v
		}
	}
}

// Zero resets the matrix to all zeros.
func (m *Matrix) Zero() { m.Fill(0) }

// Equal reports whether two matrices have identical shape and elements within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		a, b := m.Row(r), o.Row(r)
		for i := range a {
			if math.Abs(a[i]-b[i]) > tol {
				return false
			}
		}
	}
	return true
}

// MatVec computes dst = M * x. dst must have length M.Rows and x length M.Cols.
func MatVec(dst []float64, m *Matrix, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch m=%dx%d x=%d dst=%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var s float64
		for i, v := range row {
			s += v * x[i]
		}
		dst[r] = s
	}
}

// MatTVec computes dst = M^T * x. dst must have length M.Cols and x length M.Rows.
func MatTVec(dst []float64, m *Matrix, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: MatTVec shape mismatch m=%dx%d x=%d dst=%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		xv := x[r]
		if xv == 0 {
			continue
		}
		for i, v := range row {
			dst[i] += v * xv
		}
	}
}

// MatMul computes C = A * B and returns C (A: m x k, B: k x n).
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// OuterAcc accumulates dst += alpha * x * y^T (x: rows, y: cols of dst).
func OuterAcc(dst *Matrix, alpha float64, x, y []float64) {
	if len(x) != dst.Rows || len(y) != dst.Cols {
		panic("tensor: OuterAcc shape mismatch")
	}
	for r, xv := range x {
		if xv == 0 {
			continue
		}
		row := dst.Row(r)
		a := alpha * xv
		for c, yv := range y {
			row[c] += a * yv
		}
	}
}

// Axpy computes dst[i] += alpha*x[i].
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Scale multiplies every element of x by alpha in place.
func Scale(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Sum returns the sum of all elements.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// ArgMax returns the index of the first maximal element (-1 for empty input).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] > best {
			best, bi = x[i], i
		}
	}
	return bi
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampSlice clamps every element of x to [lo, hi] in place.
func ClampSlice(x []float64, lo, hi float64) {
	for i, v := range x {
		x[i] = Clamp(v, lo, hi)
	}
}

// Softmax writes softmax(x) into dst (dst may alias x). Numerically stable.
func Softmax(dst, x []float64) {
	if len(dst) != len(x) {
		panic("tensor: Softmax length mismatch")
	}
	m := x[ArgMax(x)]
	var z float64
	for i, v := range x {
		e := math.Exp(v - m)
		dst[i] = e
		z += e
	}
	for i := range dst {
		dst[i] /= z
	}
}

// LogSumExp returns log(sum(exp(x))) stably.
func LogSumExp(x []float64) float64 {
	m := x[ArgMax(x)]
	var z float64
	for _, v := range x {
		z += math.Exp(v - m)
	}
	return m + math.Log(z)
}

// Histogram counts x into bins equal-width bins over [lo, hi]. Values at hi
// fall into the last bin; values outside the range are clamped to the edge
// bins so the total always equals len(x).
func Histogram(x []float64, lo, hi float64, bins int) []int {
	if bins <= 0 || hi <= lo {
		panic("tensor: Histogram needs bins>0 and hi>lo")
	}
	h := make([]int, bins)
	w := (hi - lo) / float64(bins)
	for _, v := range x {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h[b]++
	}
	return h
}
