// Minibatch-level matrix-matrix kernels for the training hot loop.
//
// Every kernel in this file is cache-blocked AND bit-exact against the
// per-sample reference kernels in tensor.go: each destination element is
// accumulated strictly in ascending inner-product (k) order, one fused
// `dst += a*b` term per k, exactly the chain MatVec / MatTVec / OuterAcc
// produce. Exact-zero operands may be skipped — adding `w*0` or `0*x` to a
// running sum is a floating-point identity here because accumulators never
// hold -0 (they start at +0 or a finite value, and x + (-0) only differs
// from x when x itself is -0, which a +0-seeded sum chain can never
// produce). A batched pass is therefore bit-identical to the per-sample
// kernels run over the same samples in the same grouping; gemm_test.go pins
// this with exact (==) cross-checks, and nn's batch_test.go pins whole
// training runs against the per-sample reference under the trainer's shard
// partition. (How a minibatch is partitioned into shards still affects the
// cross-shard gradient summation order, as it always has — that partition
// is fixed by nn.shardChunk, not by these kernels.)
package tensor

import (
	"fmt"
	"sync"
)

// Tile sizes for the blocked kernels. Tiles bound the working set the inner
// loops touch (a column panel of the destination, a row panel of the
// transposed operand) so one operand stays cache-hot while the other
// streams. All kernels remain correct for dimensions that are not tile
// multiples; gemm_test.go covers those edges explicitly.
const (
	// gemmColTile is the destination/B column-panel width (in float64s) of
	// Gemm: 128 columns = one 1 KiB dst-row segment per accumulation sweep.
	gemmColTile = 128
	// gemmRowTile is the row-panel height used by GemmT (rows of B reused
	// across every row of A) and GemmAT (rows of dst kept hot while B
	// streams).
	gemmRowTile = 32
)

// Gemm computes dst = a * b (a: m x k, b: k x n, dst: m x n).
// Row r of dst matches MatTVec-style accumulation: dst[r][j] sums
// a[r][k]*b[k][j] over ascending k from a zero start.
func Gemm(dst, a, b *Matrix) { gemmNN(dst, a, b, false) }

// GemmAcc computes dst += a * b with the same ordering contract as Gemm.
func GemmAcc(dst, a, b *Matrix) { gemmNN(dst, a, b, true) }

func gemmNN(dst, a, b *Matrix, acc bool) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: Gemm shape mismatch dst=%dx%d a=%dx%d b=%dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for j0 := 0; j0 < b.Cols; j0 += gemmColTile {
		j1 := min(j0+gemmColTile, b.Cols)
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			crow := dst.Row(i)[j0:j1]
			if !acc {
				// Zeroing the destination segment just before accumulating
				// into it keeps the zero pass cache-hot (fused first touch).
				for j := range crow {
					crow[j] = 0
				}
			}
			for k, av := range arow {
				if av == 0 {
					continue // exact-zero skip; identity-preserving (see header)
				}
				brow := b.Row(k)[j0:j1]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// GemmT computes dst = a * b^T (a: m x k, b: n x k, dst: m x n).
// dst[i][j] is the MatVec dot-product chain of a's row i with b's row j:
// a zero-started register accumulation over ascending k.
func GemmT(dst, a, b *Matrix) { gemmNT(dst, a, b, false) }

// GemmTAcc computes dst += a * b^T; each element continues its existing
// value with the same ascending-k chain.
func GemmTAcc(dst, a, b *Matrix) { gemmNT(dst, a, b, true) }

// gemmScratch holds the compacted nonzero row panels gemmNT builds once per
// call. Pooled so steady-state GemmT calls do not allocate.
type gemmScratch struct {
	ks  []int32
	xs  []float64
	nnz []int
}

var gemmScratchPool = sync.Pool{New: func() any { return new(gemmScratch) }}

func (s *gemmScratch) ensure(rows, cols int) {
	if len(s.nnz) < rows {
		s.nnz = make([]int, rows)
	}
	if len(s.ks) < rows*cols {
		s.ks = make([]int32, rows*cols)
		s.xs = make([]float64, rows*cols)
	}
}

func gemmNT(dst, a, b *Matrix, acc bool) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: GemmT shape mismatch dst=%dx%d a=%dx%d b=%dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	k := a.Cols
	// Compact each A row's nonzeros once up front: activation panels are
	// routinely 35-95% exact zeros (black image borders, ReLU cut-offs), and
	// a dot product that skips zero terms is bit-identical to the dense
	// chain while shortening the latency-bound accumulation by that factor.
	scr := gemmScratchPool.Get().(*gemmScratch)
	scr.ensure(a.Rows, k)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		ks := scr.ks[i*k:]
		xs := scr.xs[i*k:]
		n := 0
		for kk, v := range arow {
			if v != 0 {
				ks[n] = int32(kk)
				xs[n] = v
				n++
			}
		}
		scr.nnz[i] = n
	}
	for j0 := 0; j0 < b.Rows; j0 += gemmRowTile {
		j1 := min(j0+gemmRowTile, b.Rows)
		// The B row panel [j0,j1) stays hot while every row of A streams by.
		// Four destination columns run at once: each keeps its own strictly
		// ascending-k accumulator chain (so every element stays bit-identical
		// to the one-at-a-time dot), but the four independent chains hide the
		// FP-add latency that bounds a single running sum.
		for i := 0; i < a.Rows; i++ {
			crow := dst.Row(i)
			if n := scr.nnz[i]; n*8 <= k*7 {
				ks := scr.ks[i*k : i*k+n]
				xs := scr.xs[i*k : i*k+n]
				j := j0
				for ; j+4 <= j1; j += 4 {
					b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
					var s0, s1, s2, s3 float64
					if acc {
						s0, s1, s2, s3 = crow[j], crow[j+1], crow[j+2], crow[j+3]
					}
					for t, kk := range ks {
						x := xs[t]
						s0 += x * b0[kk]
						s1 += x * b1[kk]
						s2 += x * b2[kk]
						s3 += x * b3[kk]
					}
					crow[j], crow[j+1], crow[j+2], crow[j+3] = s0, s1, s2, s3
				}
				for ; j < j1; j++ {
					brow := b.Row(j)
					var s float64
					if acc {
						s = crow[j]
					}
					for t, kk := range ks {
						s += xs[t] * brow[kk]
					}
					crow[j] = s
				}
			} else {
				arow := a.Row(i)
				j := j0
				for ; j+4 <= j1; j += 4 {
					b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
					var s0, s1, s2, s3 float64
					if acc {
						s0, s1, s2, s3 = crow[j], crow[j+1], crow[j+2], crow[j+3]
					}
					for kk, av := range arow {
						s0 += av * b0[kk]
						s1 += av * b1[kk]
						s2 += av * b2[kk]
						s3 += av * b3[kk]
					}
					crow[j], crow[j+1], crow[j+2], crow[j+3] = s0, s1, s2, s3
				}
				for ; j < j1; j++ {
					brow := b.Row(j)
					var s float64
					if acc {
						s = crow[j]
					}
					for kk, av := range arow {
						s += av * brow[kk]
					}
					crow[j] = s
				}
			}
		}
	}
	gemmScratchPool.Put(scr)
}

// GemmAT computes dst = a^T * b (a: s x m, b: s x n, dst: m x n).
func GemmAT(dst, a, b *Matrix) { gemmAT(dst, a, b, false) }

// GemmATAcc computes dst += a^T * b: the batched form of per-sample
// OuterAcc(dst, 1, a.Row(k), b.Row(k)) calls in ascending sample (k) order,
// including OuterAcc's identity-preserving skip of zero left operands.
func GemmATAcc(dst, a, b *Matrix) { gemmAT(dst, a, b, true) }

func gemmAT(dst, a, b *Matrix, acc bool) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: GemmAT shape mismatch dst=%dx%d a=%dx%d b=%dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i0 := 0; i0 < dst.Rows; i0 += gemmRowTile {
		i1 := min(i0+gemmRowTile, dst.Rows)
		// The dst row panel [i0,i1) stays hot while B streams once per panel;
		// in overwrite mode the panel is zeroed on entry (fused first touch).
		if !acc {
			for i := i0; i < i1; i++ {
				row := dst.Row(i)
				for j := range row {
					row[j] = 0
				}
			}
		}
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := i0; i < i1; i++ {
				av := arow[i]
				if av == 0 {
					continue // matches OuterAcc's zero-skip
				}
				crow := dst.Row(i)
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// AddRowVec adds v to every row of m (the batched bias add: each row gets
// the same `dst[i] += 1*v[i]` Axpy chain as the per-sample path).
func AddRowVec(m *Matrix, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVec %d-vector vs %d columns", len(v), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i, bv := range v {
			row[i] += bv
		}
	}
}

// ColSumAcc accumulates the column sums of m into dst: dst[j] += sum over
// rows of m[r][j], rows in ascending order — the batched form of per-sample
// Axpy(dst, 1, m.Row(r)).
func ColSumAcc(dst []float64, m *Matrix) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: ColSumAcc %d-vector vs %d columns", len(dst), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Relu rectifies m in place: strictly negative entries become 0 (matching
// the per-sample forward pass, which zeroes v < 0 and keeps -0 intact).
func Relu(m *Matrix) {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i, v := range row {
			if v < 0 {
				row[i] = 0
			}
		}
	}
}

// ReluBackward masks the gradient panel d by the forward activations: where
// act[r][j] <= 0 the unit was clamped (or exactly at the kink), so its
// gradient is zeroed — the subgradient choice of the per-sample path.
func ReluBackward(d, act *Matrix) {
	if d.Rows != act.Rows || d.Cols != act.Cols {
		panic(fmt.Sprintf("tensor: ReluBackward %dx%d grad vs %dx%d act", d.Rows, d.Cols, act.Rows, act.Cols))
	}
	for r := 0; r < d.Rows; r++ {
		drow, arow := d.Row(r), act.Row(r)
		for i, a := range arow {
			if a <= 0 {
				drow[i] = 0
			}
		}
	}
}

// SoftmaxRows writes the row-wise softmax of src into dst (dst may alias
// src). Each row uses the same stable single-row Softmax kernel.
func SoftmaxRows(dst, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: SoftmaxRows %dx%d dst vs %dx%d src", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for r := 0; r < src.Rows; r++ {
		Softmax(dst.Row(r), src.Row(r))
	}
}

// SubOneHot subtracts the one-hot label encoding from every row of m:
// m[r][labels[r]] -= 1. Applied to a softmax panel it yields the batched
// cross-entropy gradient with respect to the logits.
func SubOneHot(m *Matrix, labels []int) {
	if len(labels) != m.Rows {
		panic(fmt.Sprintf("tensor: SubOneHot %d labels vs %d rows", len(labels), m.Rows))
	}
	for r, y := range labels {
		m.Row(r)[y] -= 1
	}
}

// GatherCols fills dst row-by-row with the idx-indexed columns of src:
// dst[r][k] = src[r][idx[k]]. This is the axon gather that turns a core's
// scattered input wiring into a contiguous (batch x axons) panel.
func GatherCols(dst, src *Matrix, idx []int) {
	if dst.Rows != src.Rows || dst.Cols != len(idx) {
		panic(fmt.Sprintf("tensor: GatherCols dst=%dx%d src rows=%d idx=%d", dst.Rows, dst.Cols, src.Rows, len(idx)))
	}
	for r := 0; r < dst.Rows; r++ {
		srow, drow := src.Row(r), dst.Row(r)
		for k, j := range idx {
			drow[k] = srow[j]
		}
	}
}
