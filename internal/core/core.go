// Package core exposes the paper's contribution as a library API: Tea
// learning and probability-biased learning for TrueNorth deployment
// (Wen et al., "A New Learning Method for Inference Accuracy, Core
// Occupation, and Performance Co-optimization on TrueNorth Chip", DAC 2016).
//
// The workflow is train -> deploy -> evaluate:
//
//	spec := core.TrainSpec{Arch: arch, Penalty: "biased", Lambda: 5e-4, ...}
//	model, _ := core.TrainModel(spec, trainSet, testSet)
//	res, _ := model.DeployAccuracy(testSet, deploy.DefaultEvalConfig())
//
// Package core also provides the variance theory of section 3.2 (Eqs. 12-15),
// which explains why biasing connection probabilities toward {0,1} shrinks
// the per-copy deviation of the deployed network.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/dataset"
	"repro/internal/deploy"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// SynapticVariance is Eq. (15): var{w'} = c^2 p (1-p) for a synapse with
// connection probability p = |w|/cmax and integer weight magnitude cmax.
// It vanishes at the deterministic poles p = 0 and p = 1 and peaks at the
// centroid p = 0.5 — the shape the biasing penalty exploits.
func SynapticVariance(w, cmax float64) float64 {
	p := math.Abs(w) / cmax
	if p > 1 {
		p = 1
	}
	return cmax * cmax * p * (1 - p)
}

// ContributionVariance is one term of Eq. (14): var{w' x'} for a synapse with
// trained weight w and input spike probability x, combining synapse sampling
// randomness and input spike randomness.
func ContributionVariance(w, x, cmax float64) float64 {
	p := math.Abs(w) / cmax
	if p > 1 {
		p = 1
	}
	px := p * x
	return cmax * cmax * px * (1 - px)
}

// MeanSynapticVariance averages Eq. (15) over every connection of the
// network: the quantity probability-biased learning minimizes.
func MeanSynapticVariance(net *nn.Network) float64 {
	total, count := 0.0, 0
	for _, w := range net.Weights() {
		total += SynapticVariance(w, net.CMax)
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// ProbabilityHistogram bins the network's connection probabilities |w|/CMax
// into bins equal-width buckets over [0,1] and returns normalized mass —
// the paper's Figure 5 distributions.
func ProbabilityHistogram(net *nn.Network, bins int) []float64 {
	probs := net.Probabilities()
	h := tensor.Histogram(probs, 0, 1, bins)
	out := make([]float64, bins)
	n := float64(len(probs))
	for i, c := range h {
		out[i] = float64(c) / n
	}
	return out
}

// PolarFraction returns the fraction of connection probabilities within eps
// of a deterministic pole (0 or 1) — a scalar summary of Figure 5(c).
func PolarFraction(net *nn.Network, eps float64) float64 {
	probs := net.Probabilities()
	if len(probs) == 0 {
		return 0
	}
	polar := 0
	for _, p := range probs {
		if p <= eps || p >= 1-eps {
			polar++
		}
	}
	return float64(polar) / float64(len(probs))
}

// ModelMeta records how a model was produced and how it scored.
type ModelMeta struct {
	Bench         string  `json:"bench"`
	Penalty       string  `json:"penalty"`
	Lambda        float64 `json:"lambda"`
	Epochs        int     `json:"epochs"`
	Seed          uint64  `json:"seed"`
	FloatAccuracy float64 `json:"float_accuracy"`
	TrainLoss     float64 `json:"train_loss"`
	Cores         int     `json:"cores"`
}

// Model couples a trained network with its provenance.
type Model struct {
	Net  *nn.Network
	Meta ModelMeta
}

// TrainSpec describes one training run.
type TrainSpec struct {
	// Arch is the block-structured network architecture (Figure 3 family).
	Arch *nn.Arch
	// Penalty is one of "none", "l1", "l2", "biased".
	Penalty string
	// Lambda is the Eq. (16) regularization coefficient.
	Lambda float64
	// Train carries SGD hyperparameters; its Penalty/Lambda fields are
	// overwritten from this spec.
	Train nn.TrainConfig
	// Seed drives weight initialization (training order derives from
	// Train.Seed).
	Seed uint64
}

// TrainModel trains a model per spec and evaluates its float ("Caffe")
// accuracy on test. The returned model carries full provenance.
func TrainModel(spec TrainSpec, train, test *dataset.Dataset) (*Model, error) {
	pen, ok := nn.PenaltyByName(spec.Penalty)
	if !ok {
		return nil, fmt.Errorf("core: unknown penalty %q", spec.Penalty)
	}
	net, err := spec.Arch.Build(rng.NewPCG32(spec.Seed, 21), 1)
	if err != nil {
		return nil, fmt.Errorf("core: build %q: %w", spec.Arch.Name, err)
	}
	cfg := spec.Train
	cfg.Penalty = pen
	cfg.Lambda = spec.Lambda
	loss, err := nn.Train(net, train, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: train %q: %w", spec.Arch.Name, err)
	}
	m := &Model{Net: net, Meta: ModelMeta{
		Bench:         spec.Arch.Name,
		Penalty:       pen.Name(),
		Lambda:        spec.Lambda,
		Epochs:        cfg.Epochs,
		Seed:          spec.Seed,
		FloatAccuracy: nn.Evaluate(net, test, cfg.Workers),
		TrainLoss:     loss,
		Cores:         net.NumCores(),
	}}
	return m, nil
}

// DeployAccuracy samples the model onto simulated TrueNorth hardware and
// measures classification accuracy at the configured (copies, spf) point.
func (m *Model) DeployAccuracy(test *dataset.Dataset, cfg deploy.EvalConfig) (deploy.Result, error) {
	return deploy.Evaluate(m.Net, test, cfg)
}

// DeploySurface measures the full Figure 7 accuracy grid for this model.
func (m *Model) DeploySurface(test *dataset.Dataset, maxCopies, maxSPF int, cfg deploy.EvalConfig) (*deploy.SurfaceResult, error) {
	return deploy.Surface(m.Net, test, maxCopies, maxSPF, cfg)
}

// modelEnvelope is the on-disk format: metadata plus the serialized network.
type modelEnvelope struct {
	Meta ModelMeta       `json:"meta"`
	Net  json.RawMessage `json:"net"`
}

// SaveFile writes the model (meta + weights) as JSON.
func (m *Model) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := m.Net.Write(&buf); err != nil {
		return fmt.Errorf("core: encode network: %w", err)
	}
	env := modelEnvelope{Meta: m.Meta, Net: buf.Bytes()}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(&env); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	return f.Close()
}

// LoadModel reads a model written by SaveFile.
func LoadModel(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	defer f.Close()
	var env modelEnvelope
	if err := json.NewDecoder(f).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	net, err := nn.Read(bytes.NewReader(env.Net))
	if err != nil {
		return nil, err
	}
	return &Model{Net: net, Meta: env.Meta}, nil
}
