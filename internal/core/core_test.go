package core

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/deploy"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestSynapticVarianceShape(t *testing.T) {
	// Eq. 15: zero at the poles, maximal at p = 0.5.
	if SynapticVariance(0, 1) != 0 || SynapticVariance(1, 1) != 0 || SynapticVariance(-1, 1) != 0 {
		t.Fatal("variance must vanish at poles")
	}
	if v := SynapticVariance(0.5, 1); math.Abs(v-0.25) > 1e-12 {
		t.Fatalf("variance at p=0.5 is %v, want 0.25", v)
	}
	// Symmetric and monotone toward the centre.
	if SynapticVariance(0.3, 1) != SynapticVariance(-0.3, 1) {
		t.Fatal("variance not symmetric in sign")
	}
	if SynapticVariance(0.3, 1) >= SynapticVariance(0.4, 1) {
		t.Fatal("variance not increasing toward the centroid")
	}
	// Clamped beyond cmax.
	if SynapticVariance(5, 1) != 0 {
		t.Fatal("clamped p=1 must have zero variance")
	}
}

func TestSynapticVarianceMatchesMonteCarlo(t *testing.T) {
	// Property: empirical variance of the sampled synapse matches Eq. 15.
	f := func(raw uint16) bool {
		w := float64(raw)/65535*2 - 1
		want := SynapticVariance(w, 1)
		src := rng.NewPCG32(uint64(raw), 5)
		p, positive := deploy.Quantize(w, 1)
		const n = 30000
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := 0.0
			if rng.Bernoulli(src, p) {
				if positive {
					v = 1
				} else {
					v = -1
				}
			}
			sum += v
			sq += v * v
		}
		mean := sum / n
		got := sq/n - mean*mean
		return math.Abs(got-want) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestContributionVariance(t *testing.T) {
	// var{w'x'} = px(1-px); at p=1 only spike noise remains.
	if v := ContributionVariance(1, 0.5, 1); math.Abs(v-0.25) > 1e-12 {
		t.Fatalf("p=1, x=0.5: %v, want 0.25", v)
	}
	// Binary input and p=1: fully deterministic.
	if v := ContributionVariance(1, 1, 1); v != 0 {
		t.Fatalf("p=1, x=1: %v, want 0", v)
	}
	if v := ContributionVariance(0, 0.7, 1); v != 0 {
		t.Fatal("p=0 must contribute nothing")
	}
}

func smallArch() *nn.Arch {
	return &nn.Arch{
		Name: "core-test", InputH: 8, InputW: 8, Block: 4, Stride: 4,
		CoreSize: 16, Classes: 2, Tau: 8, InitScale: 0.3,
	}
}

func binData(n int, seed uint64) *dataset.Dataset {
	src := rng.NewPCG32(seed, 3)
	d := &dataset.Dataset{
		Name: "core-bin", FeatDim: 64, NumClasses: 2, Height: 8, Width: 8,
		X: make([][]float64, n), Y: make([]int, n),
	}
	for i := 0; i < n; i++ {
		y := i % 2
		x := make([]float64, 64)
		for j := range x {
			hot := (y == 0) == (j%8 < 4)
			v := 0.1
			if hot {
				v = 0.9
			}
			x[j] = tensor.Clamp(v+(rng.Float64(src)-0.5)*0.1, 0, 1)
		}
		d.X[i] = x
		d.Y[i] = y
	}
	return d
}

func TestTrainModelEndToEnd(t *testing.T) {
	train := binData(200, 1)
	test := binData(100, 2)
	spec := TrainSpec{
		Arch: smallArch(), Penalty: "biased", Lambda: 0.002,
		Train: nn.TrainConfig{Epochs: 8, Batch: 16, LR: 0.15, Momentum: 0.9,
			LRDecay: 0.9, Warmup: 3, Seed: 7, Workers: 4},
		Seed: 7,
	}
	m, err := TrainModel(spec, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if m.Meta.FloatAccuracy < 0.9 {
		t.Fatalf("float accuracy %v", m.Meta.FloatAccuracy)
	}
	if m.Meta.Penalty != "biased" || m.Meta.Cores != 4 {
		t.Fatalf("meta %+v", m.Meta)
	}
	cfg := deploy.DefaultEvalConfig()
	cfg.Repeats = 3
	res, err := m.DeployAccuracy(test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.8 {
		t.Fatalf("deployed accuracy %v", res.Accuracy)
	}
}

func TestTrainModelRejectsUnknownPenalty(t *testing.T) {
	if _, err := TrainModel(TrainSpec{Arch: smallArch(), Penalty: "nope"}, binData(10, 1), binData(10, 2)); err == nil {
		t.Fatal("unknown penalty accepted")
	}
}

func TestBiasedTrainingReducesMeanVariance(t *testing.T) {
	train := binData(300, 3)
	test := binData(100, 4)
	base := nn.TrainConfig{Epochs: 10, Batch: 16, LR: 0.15, Momentum: 0.9,
		LRDecay: 0.9, Warmup: 3, Seed: 9, Workers: 4}
	tea, err := TrainModel(TrainSpec{Arch: smallArch(), Penalty: "none", Train: base, Seed: 9}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	biased, err := TrainModel(TrainSpec{Arch: smallArch(), Penalty: "biased", Lambda: 0.003, Train: base, Seed: 9}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	vTea := MeanSynapticVariance(tea.Net)
	vBiased := MeanSynapticVariance(biased.Net)
	if vBiased >= vTea {
		t.Fatalf("biased variance %v not below tea %v", vBiased, vTea)
	}
	// And the histogram mass concentrates at the poles.
	if PolarFraction(biased.Net, 0.05) <= PolarFraction(tea.Net, 0.05) {
		t.Fatal("biased model not more polar")
	}
}

func TestProbabilityHistogramNormalized(t *testing.T) {
	net, err := smallArch().Build(rng.NewPCG32(1, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	h := ProbabilityHistogram(net, 20)
	if len(h) != 20 {
		t.Fatalf("bins %d", len(h))
	}
	sum := 0.0
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative mass")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram mass %v", sum)
	}
}

func TestPolarFractionBounds(t *testing.T) {
	net, err := smallArch().Build(rng.NewPCG32(1, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if f := PolarFraction(net, 1); f != 1 {
		t.Fatalf("eps=1 fraction %v", f)
	}
	// Force all weights to 0.5: nothing polar at eps 0.05.
	for _, l := range net.Layers {
		for _, c := range l.Cores {
			for i := range c.W.Data {
				c.W.Data[i] = 0.5
			}
		}
	}
	if f := PolarFraction(net, 0.05); f != 0 {
		t.Fatalf("centroid weights reported polar: %v", f)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	train := binData(50, 5)
	test := binData(20, 6)
	spec := TrainSpec{
		Arch: smallArch(), Penalty: "none",
		Train: nn.TrainConfig{Epochs: 2, Batch: 8, LR: 0.1, Momentum: 0.9, Seed: 3, Workers: 2},
		Seed:  3,
	}
	m, err := TrainModel(spec, train, test)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != m.Meta {
		t.Fatalf("meta changed: %+v vs %+v", got.Meta, m.Meta)
	}
	a, b := m.Net.Weights(), got.Net.Weights()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("weights changed by round trip")
		}
	}
}

func TestLoadModelMissing(t *testing.T) {
	if _, err := LoadModel(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected error")
	}
}
