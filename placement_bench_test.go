package repro

import (
	"os"
	"testing"

	"repro/internal/eval"
)

// TestPlacementBench is the env-gated measurement behind BENCH_10.json:
//
//	PLACE_BENCH_OUT=BENCH_10.json go test -run TestPlacementBench -v .
//
// It runs the full chipscale ladder (248 -> 992 -> 4092 cores, 24 frames per
// rung) with the seeded annealing placer at smoke training scale — the traffic
// topology the placer optimizes depends only on the bench-3 window structure,
// not on how long the model trained — and pins PR 10's acceptance criterion at
// the top rung: the annealed placement's traffic-weighted wire cost is at
// least 25% below row-major AND its hottest mesh link carries less static
// load, reproducibly from the logged seed. Every rung must also report
// NoCExact: the NoC-off twin chip stayed bit-identical through real frames
// (the observer-only half of the eighth determinism contract, measured end to
// end rather than asserted on toy chips).
func TestPlacementBench(t *testing.T) {
	out := os.Getenv("PLACE_BENCH_OUT")
	if out == "" {
		t.Skip("set PLACE_BENCH_OUT to a BENCH json path to run the 4096-core placement measurement")
	}
	opt := eval.Options{
		Seed: 20160605, TrainN: 600, TestN: 300, EpochsN: 2,
		Place: "anneal",
	}
	r := eval.NewRunner(opt, nil)
	res, err := eval.ChipScale(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("empty ladder")
	}
	top := res.Entries[len(res.Entries)-1]
	if top.Cores != 4092 {
		t.Fatalf("top rung has %d cores, want 4092", top.Cores)
	}
	savings := 1 - top.WirePlaced/top.WireNaive
	t.Logf("4092 cores: wire %.0f vs row-major %.0f (%.1f%% lower), max link %.0f vs %.0f, %.2f hops/spike",
		top.WirePlaced, top.WireNaive, savings*100, top.MaxLinkPlaced, top.MaxLinkNaive, top.MeanHopsPerSpike)
	if savings < 0.25 {
		t.Errorf("annealed wire cost %.0f is only %.1f%% below row-major %.0f, want >= 25%%",
			top.WirePlaced, savings*100, top.WireNaive)
	}
	if top.MaxLinkPlaced >= top.MaxLinkNaive {
		t.Errorf("annealed max link %.0f not below row-major %.0f", top.MaxLinkPlaced, top.MaxLinkNaive)
	}
	for _, e := range res.Entries {
		if !e.NoCExact {
			t.Errorf("%d cores: NoC-off twin diverged — observer mutated simulation state", e.Cores)
		}
		if e.HopsPerFrame <= 0 {
			t.Errorf("%d cores: no mesh traffic measured", e.Cores)
		}
	}

	rec, err := eval.LoadBenchRecord(out)
	if err != nil {
		t.Fatal(err)
	}
	rec.PR = 10
	rec.Title = "Mesh NoC accounting + seeded annealing placer: chipscale ladder"
	rec.Machine = eval.Machine()
	rec.Command = "PLACE_BENCH_OUT=BENCH_10.json go test -run TestPlacementBench -v ."
	rec.Note = "Full {248, 992, 4092}-core ladder at smoke training scale (600 train / 300 test / 2 " +
		"epochs): mesh traffic is fixed by the bench-3 window topology, so placement numbers match " +
		"the full protocol while the model itself is underfit. wire_* and max_link_* are static " +
		"traffic-weighted metrics; hops/energy/latency are measured per frame by the NoC observer; " +
		"noc_exact records that a NoC-off twin chip stayed bit-identical over the same frames."
	rec.Set("chipscale", res)
	rec.Set("placement_4092", map[string]any{
		"seed":              res.Seed,
		"placer":            res.Placer,
		"wire_naive":        top.WireNaive,
		"wire_placed":       top.WirePlaced,
		"wire_savings_frac": savings,
		"max_link_naive":    top.MaxLinkNaive,
		"max_link_placed":   top.MaxLinkPlaced,
		"mean_hops":         top.MeanHopsPerSpike,
	})
	if err := rec.Write(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
