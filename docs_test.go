package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns every markdown file the docs CI job guards: the repo-root
// *.md set plus everything under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	root, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, root...)
	err = filepath.WalkDir("docs", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("only %d markdown files found: %v", len(files), files)
	}
	return files
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingAnchors returns the GitHub-style anchor slugs of every heading in a
// markdown document.
func headingAnchors(content string) map[string]bool {
	anchors := map[string]bool{}
	nonSlug := regexp.MustCompile(`[^a-z0-9 \-]`)
	inFence := false
	for _, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		slug := strings.ToLower(text)
		slug = nonSlug.ReplaceAllString(slug, "")
		slug = strings.ReplaceAll(slug, " ", "-")
		anchors[slug] = true
	}
	return anchors
}

// TestDocsLinksResolve is the markdown link check behind CI's docs job: every
// relative link in README/ROADMAP/CHANGES/PAPER(S)/docs/* must point at an
// existing file (and, when it carries a #fragment, at an existing heading).
// External links are only shape-checked — CI must not depend on the network.
func TestDocsLinksResolve(t *testing.T) {
	for _, file := range docFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		content := string(raw)
		for _, m := range mdLink.FindAllStringSubmatch(content, -1) {
			link := m[1]
			switch {
			case strings.HasPrefix(link, "http://"), strings.HasPrefix(link, "https://"):
				continue
			case strings.HasPrefix(link, "mailto:"):
				continue
			}
			target, frag, _ := strings.Cut(link, "#")
			var anchors map[string]bool
			if target == "" {
				anchors = headingAnchors(content)
			} else {
				path := filepath.Join(filepath.Dir(file), target)
				info, err := os.Stat(path)
				if err != nil {
					t.Errorf("%s: broken link %q (%v)", file, link, err)
					continue
				}
				if frag != "" {
					if info.IsDir() {
						t.Errorf("%s: link %q has a fragment but targets a directory", file, link)
						continue
					}
					tr, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					anchors = headingAnchors(string(tr))
				}
			}
			if frag != "" && !anchors[frag] {
				t.Errorf("%s: link %q: no heading for anchor %q", file, link, frag)
			}
		}
	}
}

// TestDocsCoreFilesExist pins the documentation layer's contract with the
// README and CI: the architecture and determinism documents exist, are
// linked from the README, and name the code that enforces each contract.
func TestDocsCoreFilesExist(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"docs/ARCHITECTURE.md", "docs/DETERMINISM.md"} {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s missing: %v", doc, err)
		}
		if len(raw) < 1000 {
			t.Fatalf("%s is a stub (%d bytes)", doc, len(raw))
		}
		if !strings.Contains(string(readme), doc) {
			t.Errorf("README.md does not link %s", doc)
		}
	}
	det, err := os.ReadFile("docs/DETERMINISM.md")
	if err != nil {
		t.Fatal(err)
	}
	// Each contract section must cross-link the enforcing code, and that code
	// must exist — the docs stay tethered to the tree.
	for _, src := range []string{
		"internal/engine/engine.go",
		"internal/serve/registry.go",
		"internal/nn/batch.go",
		"internal/truenorth/event.go",
		"internal/truenorth/event_test.go",
		"internal/deploy/chip_event_test.go",
		"internal/engine/confidence.go",
		"internal/engine/waves.go",
		"internal/deploy/ensemble_test.go",
		"internal/serve/ensemble_test.go",
		"internal/serve/ring.go",
		"internal/serve/router.go",
		"internal/serve/snapshot.go",
		"internal/serve/loadgen.go",
		"internal/serve/router_test.go",
		"internal/serve/snapshot_test.go",
		"internal/serve/chaos_test.go",
		"internal/truenorth/faults.go",
		"internal/fault/fault.go",
		"internal/fault/chip.go",
		"internal/fault/analog.go",
		"internal/fault/fault_test.go",
		"internal/fault/fuzz_test.go",
		"internal/truenorth/noc.go",
		"internal/truenorth/anneal.go",
		"internal/truenorth/chip.go",
		"internal/deploy/chip.go",
		"internal/truenorth/placement_test.go",
		"internal/truenorth/placement_fuzz_test.go",
	} {
		if !strings.Contains(string(det), src) {
			t.Errorf("docs/DETERMINISM.md does not reference %s", src)
		}
		if _, err := os.Stat(src); err != nil {
			t.Errorf("docs/DETERMINISM.md references %s which does not exist", src)
		}
	}
}

// TestDocsNoStaleFileReferences guards against the drift this PR cleaned up:
// repo-relative file references in markdown prose (backtick-quoted paths and
// BENCH artifacts) must exist on disk.
func TestDocsNoStaleFileReferences(t *testing.T) {
	pathRef := regexp.MustCompile("`((?:cmd|docs|internal|examples)/[A-Za-z0-9_/.-]+\\.(?:go|md)|BENCH_[A-Za-z0-9]+\\.json)`")
	for _, file := range docFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range pathRef.FindAllStringSubmatch(string(raw), -1) {
			ref := m[1]
			if ref == "BENCH_CI.json" || ref == "BENCH_FAULTS.json" || ref == "BENCH_PLACE.json" {
				continue // CI artifacts, produced by the workflow, not committed
			}
			if _, err := os.Stat(ref); err != nil {
				t.Errorf("%s: references %s which does not exist", file, ref)
			}
		}
	}
}

// TestDocsExperimentIndexMatchesRepro keeps the experiment-id table in
// docs/ARCHITECTURE.md in sync with cmd/tnrepro: every id the table names
// must be runnable.
func TestDocsExperimentIndexMatchesRepro(t *testing.T) {
	raw, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	mainGo, err := os.ReadFile("cmd/tnrepro/main.go")
	if err != nil {
		t.Fatal(err)
	}
	idRe := regexp.MustCompile("(?m)^\\| `([a-z0-9]+)`(?:/`([a-z0-9]+)`)?")
	documented := map[string]bool{}
	for _, m := range idRe.FindAllStringSubmatch(string(raw), -1) {
		documented[m[1]] = true
		if m[2] != "" {
			documented[m[2]] = true
		}
	}
	if len(documented) < 10 {
		t.Fatalf("experiment table parse found only %d ids: %v", len(documented), documented)
	}
	// Ids whose index rows have already paid for benchmark artifacts must stay
	// listed — a table rewrite that drops them would orphan BENCH_5/BENCH_6.
	for _, id := range []string{"chipscale", "earlyexit", "faults"} {
		if !documented[id] {
			t.Errorf("experiment index is missing the %q row", id)
		}
	}
	// Docs -> code: every documented id must be runnable.
	for id := range documented {
		if !strings.Contains(string(mainGo), fmt.Sprintf("%q", id)) &&
			!strings.Contains(string(mainGo), fmt.Sprintf("case \"%s\"", id)) {
			t.Errorf("docs/ARCHITECTURE.md lists experiment %q not handled by cmd/tnrepro", id)
		}
	}
	// Code -> docs: every runExperiment case id must be documented, so new
	// experiments cannot land without updating the index.
	caseRe := regexp.MustCompile(`case "([a-z0-9]+)"(?:, "([a-z0-9]+)")?:`)
	for _, m := range caseRe.FindAllStringSubmatch(string(mainGo), -1) {
		for _, id := range m[1:] {
			if id != "" && !documented[id] {
				t.Errorf("cmd/tnrepro handles experiment %q missing from docs/ARCHITECTURE.md's index", id)
			}
		}
	}
}
