// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper (docs/ARCHITECTURE.md "Experiment index" maps each to its experiment).
//
// Each benchmark regenerates its experiment at micro scale (tiny datasets,
// few epochs) so `go test -bench=. -benchmem` finishes in minutes while still
// executing the full code path — dataset synthesis, Tea/biased training,
// Bernoulli deployment, spike-domain evaluation, and the paper's pairing
// procedure. Model training is hoisted into a shared, lazily initialized
// fixture so per-iteration cost reflects the measurement itself.
package repro

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/deploy"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/synth/digits"
	"repro/internal/synth/protein"
)

var (
	fixtureOnce sync.Once
	fixture     *eval.Runner
)

// runner returns the shared micro-scale Runner with bench-1 models trained.
func runner(b *testing.B) *eval.Runner {
	b.Helper()
	fixtureOnce.Do(func() {
		opt := eval.Options{
			Quick: true, Seed: 20160605,
			TrainN: 600, TestN: 300, EpochsN: 3, RepeatsN: 2,
		}
		fixture = eval.NewRunner(opt, nil)
	})
	return fixture
}

// --------------------------------------------------------------- Table 1 --

func BenchmarkTable1DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dcfg := digits.Config{Train: 200, Test: 50, Seed: uint64(i + 1), Jitter: 1, Noise: 0.06}
		train, test := digits.Generate(dcfg)
		if train.Len()+test.Len() != 250 {
			b.Fatal("bad split")
		}
		pcfg := protein.Config{Train: 200, Test: 50, Seed: uint64(i + 1), Sharpness: 1.35, MinLen: 60, MaxLen: 120}
		ptrain, _ := protein.Generate(pcfg)
		if ptrain.FeatDim != 357 {
			b.Fatal("bad protein dims")
		}
	}
}

// ----------------------------------------------------------- Section 3.1 --

func BenchmarkSection31DeploymentGap(b *testing.B) {
	r := runner(b)
	if _, err := eval.Section31(r); err != nil { // train once before timing
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Section31(r); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------ L1 sparsity --

func BenchmarkL1SparsityMLP(b *testing.B) {
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	train, _ := r.Data(bench)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := nn.NewMLP(rng.NewPCG32(uint64(i+1), 1), 784, 64, 10)
		cfg := nn.MLPTrainConfig{Epochs: 1, Batch: 32, LR: 0.05, Momentum: 0.9,
			Lambda: 0.0001, Seed: uint64(i), Workers: 8}
		if err := nn.TrainMLP(m, train, cfg); err != nil {
			b.Fatal(err)
		}
		m.ZeroFractions(0.01)
	}
}

// --------------------------------------------------------------- Figure 4 --

func BenchmarkFig4DeviationMap(b *testing.B) {
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	m, err := r.Model(bench, "biased")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dm, err := deploy.CoreDeviation(m.Net, 0, 0, rng.NewPCG32(uint64(i+1), 1))
		if err != nil {
			b.Fatal(err)
		}
		dm.Stats()
	}
}

// --------------------------------------------------------------- Figure 5 --

func BenchmarkFig5Histograms(b *testing.B) {
	r := runner(b)
	if _, err := eval.Fig5(r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig5(r); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------------- Figures 7/8 --

func BenchmarkFig7AccuracySurfaces(b *testing.B) {
	r := runner(b)
	if _, err := eval.Fig7(r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := eval.Fig7(r)
		if err != nil {
			b.Fatal(err)
		}
		f.Boost() // Figure 8
	}
}

// --------------------------------------------------------------- Table 2 --

func BenchmarkTable2aCoreOccupation(b *testing.B) {
	r := runner(b)
	f, err := eval.Fig7(r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2a := eval.Table2a(r, f)
		if len(t2a.N) != 16 {
			b.Fatal("bad ladder")
		}
	}
}

func BenchmarkTable2bPerformance(b *testing.B) {
	r := runner(b)
	if _, err := eval.Table2b(r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table2b(r); err != nil {
			b.Fatal(err)
		}
	}
}

// --------------------------------------------------------------- Figure 9 --

func BenchmarkFig9aSavingsVsSPF(b *testing.B) {
	r := runner(b)
	f, err := eval.Fig7(r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Fig9a(r, f)
	}
}

func BenchmarkFig9bSavingsPerBench(b *testing.B) {
	r := runner(b)
	if _, err := eval.Fig9b(r); err != nil { // trains all 10 models once
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig9b(r); err != nil {
			b.Fatal(err)
		}
	}
}

// --------------------------------------------------------------- Table 3 --

func BenchmarkTable3Benches(b *testing.B) {
	r := runner(b)
	if _, err := eval.Table3(r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table3(r); err != nil {
			b.Fatal(err)
		}
	}
}

// -------------------------------------------------------------- Ablations --

func BenchmarkAblationMapping(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := eval.AblationMapping(r)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.CountsAgree {
			b.Fatal("mappings diverged")
		}
	}
}

// ------------------------------------------------- substrate micro-benches --

// BenchmarkDeployFrame measures one spike-domain classification frame of the
// bench-1 network (4 cores, 256x256), the inner loop of every surface.
func BenchmarkDeployFrame(b *testing.B) {
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	m, err := r.Model(bench, "none")
	if err != nil {
		b.Fatal(err)
	}
	_, test := r.Data(bench)
	sn := deploy.Sample(m.Net, rng.NewPCG32(1, 1), deploy.DefaultSampleConfig())
	fs := sn.NewFrameScratch()
	src := rng.NewPCG32(2, 2)
	counts := make([]int64, 10)
	x := make([]float64, 28*28)
	copy(x, test.X[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn.Frame(fs, x, 1, src, counts)
	}
}

// BenchmarkSurfaceEvaluate measures deploy.Surface end-to-end on a 4x2 grid
// of the bench-1 model — the engine-backed hot path behind Figure 7, Table 2
// and every Evaluate call.
func BenchmarkSurfaceEvaluate(b *testing.B) {
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	m, err := r.Model(bench, "none")
	if err != nil {
		b.Fatal(err)
	}
	_, test := r.Data(bench)
	cfg := deploy.EvalConfig{Repeats: 2, Limit: 200, Seed: 5, Sample: deploy.DefaultSampleConfig()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deploy.Surface(m.Net, test, 4, 2, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineClassifyFast measures batched fast-path classification
// through the shared inference engine (one sampled copy, 1 spf).
func BenchmarkEngineClassifyFast(b *testing.B) {
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	m, err := r.Model(bench, "none")
	if err != nil {
		b.Fatal(err)
	}
	_, test := r.Data(bench)
	sn := deploy.Sample(m.Net, rng.NewPCG32(1, 1), deploy.DefaultSampleConfig())
	eng := engine.New(&deploy.FastPredictor{Net: sn}, engine.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Classify(test.X[:200], 1, rng.NewPCG32(uint64(i), 2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineClassifyConf measures confidence-gated adaptive ensemble
// classification on the bench-1 biased model (16 sampled copies, 2 spf): the
// exact full-budget vote against early-exit thresholds, reporting the mean
// copies each item actually evaluated (BENCH_6.json). Speedup comes from the
// gate alone — both sub-benchmarks share the ensemble, engine, and items.
func BenchmarkEngineClassifyConf(b *testing.B) {
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	m, err := r.Model(bench, "biased")
	if err != nil {
		b.Fatal(err)
	}
	_, test := r.Data(bench)
	const copies, spf = 16, 2
	plan := deploy.CompileQuant(m.Net)
	ens := deploy.NewSeededEnsemble(plan, copies, 1, 40, deploy.DefaultSampleConfig())
	eng := engine.New(ens, engine.Config{})
	n := 200
	if test.Len() < n {
		n = test.Len()
	}
	for _, sub := range []struct {
		name string
		conf float64
	}{{"exact", 0}, {"conf99", 0.99}} {
		b.Run(sub.name, func(b *testing.B) {
			items := make([]engine.Item, n)
			for i := range items {
				is := uint64(i)
				items[i] = engine.Item{X: test.X[i], SPF: spf, Copies: copies, Conf: sub.conf,
					Seed: func(dst *rng.PCG32) { dst.Seed(9, is) }}
			}
			if _, err := eng.ClassifyItems(items); err != nil { // materialize all copies
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var used int64
			for i := 0; i < b.N; i++ {
				outs, err := eng.ClassifyItems(items)
				if err != nil {
					b.Fatal(err)
				}
				for _, o := range outs {
					used += int64(o.CopiesUsed)
				}
			}
			b.ReportMetric(float64(used)/float64(b.N*n), "copies/item")
		})
	}
}

// BenchmarkEngineClassifyChip measures the cycle-accurate chip path through
// the engine: every worker simulates a private 4-core chip.
func BenchmarkEngineClassifyChip(b *testing.B) {
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	m, err := r.Model(bench, "none")
	if err != nil {
		b.Fatal(err)
	}
	_, test := r.Data(bench)
	sn := deploy.Sample(m.Net, rng.NewPCG32(1, 1), deploy.DefaultSampleConfig())
	cp, err := deploy.NewChipPredictor([]*deploy.SampledNet{sn}, deploy.MapSigned, 3)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(cp, engine.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Classify(test.X[:50], 1, rng.NewPCG32(uint64(i), 4)); err != nil {
			b.Fatal(err)
		}
	}
}

// chipFrameFixture lowers the bench-1 model onto a chip and returns the net
// plus one test input for per-frame chip benchmarks.
func chipFrameFixture(b *testing.B) (*deploy.ChipNet, []float64) {
	b.Helper()
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	m, err := r.Model(bench, "none")
	if err != nil {
		b.Fatal(err)
	}
	_, test := r.Data(bench)
	sn := deploy.Sample(m.Net, rng.NewPCG32(1, 1), deploy.DefaultSampleConfig())
	cn, err := deploy.BuildChip(sn, deploy.MapSigned, 3)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 28*28)
	copy(x, test.X[0])
	return cn, x
}

// BenchmarkChipDeployFrame measures one cycle-accurate classification frame
// on the lowered bench-1 chip (4 cores, 4 spf) under the event-driven
// simulator — the chip-path sibling of BenchmarkDeployFrame (BENCH_5.json).
func BenchmarkChipDeployFrame(b *testing.B) {
	cn, x := chipFrameFixture(b)
	src := rng.NewPCG32(2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cn.Frame(x, 4, src)
	}
}

// BenchmarkChipDeployFrameDense is the dense-reference baseline for
// BenchmarkChipDeployFrame: the identical frame through Chip.TickDense.
func BenchmarkChipDeployFrameDense(b *testing.B) {
	cn, x := chipFrameFixture(b)
	src := rng.NewPCG32(2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cn.FrameDense(x, 4, src)
	}
}

// BenchmarkSampleCopy measures copy-sampling throughput from a precompiled
// QuantPlan — the repeats*copies inner loop of every deployment surface.
func BenchmarkSampleCopy(b *testing.B) {
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	m, err := r.Model(bench, "none")
	if err != nil {
		b.Fatal(err)
	}
	plan := deploy.CompileQuant(m.Net)
	src := rng.NewPCG32(3, 3)
	cfg := deploy.DefaultSampleConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sn := plan.Sample(src, cfg); sn.NumCores() == 0 {
			b.Fatal("empty copy")
		}
	}
}

// BenchmarkEncodeInput measures input spike encoding of one 4-tick frame:
// tick 0 compiles the per-frame threshold plan, ticks 1-3 replay it.
func BenchmarkEncodeInput(b *testing.B) {
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	m, err := r.Model(bench, "none")
	if err != nil {
		b.Fatal(err)
	}
	_, test := r.Data(bench)
	sn := deploy.Sample(m.Net, rng.NewPCG32(1, 1), deploy.DefaultSampleConfig())
	fs := sn.NewFrameScratch()
	src := rng.NewPCG32(2, 2)
	x := make([]float64, 28*28)
	copy(x, test.X[0])
	const spf = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < spf; t++ {
			sn.EncodeFrameTick(fs, x, t, spf, src)
		}
	}
}

// trainEpochFixture builds the standalone bench-1 training workload shared by
// the SGD-loop benchmarks: 1024 synthetic digits and a freshly initialized
// bench-1 network. It deliberately avoids runner(b) so the CI benchmark smoke
// (-bench=BenchmarkTrainEpoch -benchtime=1x) never trains fixture models.
func trainEpochFixture(b *testing.B) (*nn.Network, *dataset.Dataset) {
	b.Helper()
	bench, _ := eval.BenchByID(1)
	dcfg := digits.Config{Train: 1024, Test: 16, Seed: 7, Jitter: 1, Noise: 0.06}
	train, _ := digits.Generate(dcfg)
	net, err := bench.Arch.Build(rng.NewPCG32(1, 1), 1)
	if err != nil {
		b.Fatal(err)
	}
	return net, train
}

// BenchmarkTrainEpoch measures one full SGD epoch of the paper's learning
// method on the bench-1 architecture (1024 samples, batch 32, 8 workers) —
// the training hot loop behind every Table 1 / Figure 7 model.
func BenchmarkTrainEpoch(b *testing.B) {
	net, train := trainEpochFixture(b)
	cfg := nn.TrainConfig{Epochs: 1, Batch: 32, LR: 0.1, Momentum: 0.9, Seed: 1, Workers: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nn.Train(net, train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate measures expectation-model ("Caffe") accuracy evaluation
// on the bench-1 network — the float-accuracy pass run after every training.
func BenchmarkEvaluate(b *testing.B) {
	net, train := trainEpochFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if acc := nn.Evaluate(net, train, 8); acc < 0 {
			b.Fatal("bad accuracy")
		}
	}
}

// BenchmarkTrainEpochMLP measures one SGD epoch of the dense 784-300-100-10
// MLP baseline (section 3.3) on the same 1024-sample corpus.
func BenchmarkTrainEpochMLP(b *testing.B) {
	_, train := trainEpochFixture(b)
	m := nn.NewMLP(rng.NewPCG32(2, 2), 784, 300, 100, 10)
	cfg := nn.MLPTrainConfig{Epochs: 1, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 1, Workers: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nn.TrainMLP(m, train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainingStep measures one bench-1 minibatch SGD step (32 samples
// through Eq. 9/14/11 forward and the full-variance backward).
func BenchmarkTrainingStep(b *testing.B) {
	r := runner(b)
	bench, _ := eval.BenchByID(1)
	train, _ := r.Data(bench)
	net, err := bench.Arch.Build(rng.NewPCG32(1, 1), 1)
	if err != nil {
		b.Fatal(err)
	}
	sub := train.Subset(32)
	cfg := nn.TrainConfig{Epochs: 1, Batch: 32, LR: 0.1, Momentum: 0.9, Seed: 1, Workers: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nn.Train(net, sub, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
