package repro

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/synth/digits"
	"repro/internal/truenorth"
)

// TestEndToEndPipeline exercises the full stack on a miniature corpus:
// generate -> train (biased) -> serialize -> reload -> sample -> evaluate on
// both the fast path and the explicit chip, checking cross-path agreement.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := digits.Config{Train: 1200, Test: 400, Seed: 5, Jitter: 1, Noise: 0.06}
	train, test := digits.Generate(cfg)
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}

	arch := &nn.Arch{
		Name: "integration", InputH: 28, InputW: 28,
		Block: 16, Stride: 12, CoreSize: 256, Classes: 10, Tau: 12,
	}
	model, err := core.TrainModel(core.TrainSpec{
		Arch: arch, Penalty: "biased", Lambda: 0.0005,
		Train: nn.TrainConfig{Epochs: 4, Batch: 32, LR: 0.1, Momentum: 0.9,
			LRDecay: 0.85, Warmup: 1, Seed: 2},
		Seed: 2,
	}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if model.Meta.FloatAccuracy < 0.7 {
		t.Fatalf("float accuracy %v too low for integration corpus", model.Meta.FloatAccuracy)
	}

	// Serialize, reload, verify identical predictions.
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := core.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 28*28)
	copy(x, test.X[0])
	a, b := model.Net.Predict(x), reloaded.Net.Predict(x)
	for k := range a {
		if math.Abs(a[k]-b[k]) > 1e-12 {
			t.Fatal("reloaded model predicts differently")
		}
	}

	// Deploy and check the deployment is in a sane band.
	res, err := model.DeployAccuracy(test, deploy.EvalConfig{
		Copies: 2, SPF: 2, Repeats: 2, Seed: 9, Sample: deploy.DefaultSampleConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < model.Meta.FloatAccuracy-0.25 {
		t.Fatalf("deployed accuracy %v collapsed from float %v", res.Accuracy, model.Meta.FloatAccuracy)
	}
	if res.Cores != 8 {
		t.Fatalf("2 copies of 4 cores = %d", res.Cores)
	}

	// Chip lowering: same sampled copy, binary thresholded image, integer
	// biases forced, exact agreement with the fast path.
	net2 := reloaded.Net
	for _, l := range net2.Layers {
		for _, c := range l.Cores {
			for j := range c.Bias {
				c.Bias[j] = math.Round(c.Bias[j])
			}
		}
	}
	sn := deploy.Sample(net2, rng.NewPCG32(11, 1), deploy.DefaultSampleConfig())
	cn, err := deploy.BuildChip(sn, deploy.MapSigned, 12)
	if err != nil {
		t.Fatal(err)
	}
	if cn.Chip.NumCores() != 4 {
		t.Fatalf("chip cores %d", cn.Chip.NumCores())
	}
	xbin := make([]float64, 28*28)
	for i, v := range test.X[1] {
		if v > 0.5 {
			xbin[i] = 1
		}
	}
	fs := sn.NewFrameScratch()
	fast := make([]int64, 10)
	sn.Frame(fs, xbin, 3, rng.NewPCG32(13, 13), fast)
	chip := cn.Frame(xbin, 3, rng.NewPCG32(14, 14))
	for k := range fast {
		if fast[k] != chip[k] {
			t.Fatalf("class %d: fast %d vs chip %d", k, fast[k], chip[k])
		}
	}

	// Attach the NoC observer and replay the identical frame: class counts
	// must not move by a single spike (observer-only contract through the
	// public deployment API), and the observer must balance its own books —
	// total hops equal the summed per-link crossings.
	placed, err := truenorth.PlaceRowMajor(cn.Chip.NumCores())
	if err != nil {
		t.Fatal(err)
	}
	if err := cn.Chip.SetNoC(placed); err != nil {
		t.Fatal(err)
	}
	observed := cn.Frame(xbin, 3, rng.NewPCG32(14, 14))
	for k := range chip {
		if chip[k] != observed[k] {
			t.Fatalf("class %d: NoC observer changed counts %d -> %d", k, chip[k], observed[k])
		}
	}
	noc := cn.Chip.NoC()
	var linkSum int64
	for _, v := range noc.HLink {
		linkSum += v
	}
	for _, v := range noc.VLink {
		linkSum += v
	}
	if linkSum != noc.Hops {
		t.Fatalf("per-link crossings %d != total hops %d", linkSum, noc.Hops)
	}
}

// TestPlacementIntegration places the deep bench-3 core layout on the chip
// grid and confirms the layered placement beats row-major on feed-forward
// traffic after greedy improvement, the seeded annealer beats both, and the
// per-link conservation law holds for every placement.
func TestPlacementIntegration(t *testing.T) {
	layers := []truenorth.LayerSpan{
		{Start: 0, Rows: 7, Cols: 7},
		{Start: 49, Rows: 3, Cols: 3},
		{Start: 58, Rows: 2, Cols: 2},
	}
	var traffic []truenorth.Traffic
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			dst := 49 + r*3 + c
			for dr := 0; dr < 3; dr++ {
				for dc := 0; dc < 3; dc++ {
					traffic = append(traffic, truenorth.Traffic{
						Src: (r*2+dr)*7 + (c*2 + dc), Dst: dst, Weight: 1,
					})
				}
			}
		}
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			dst := 58 + r*2 + c
			for dr := 0; dr < 2; dr++ {
				for dc := 0; dc < 2; dc++ {
					traffic = append(traffic, truenorth.Traffic{
						Src: 49 + (r+dr)*3 + (c + dc), Dst: dst, Weight: 1,
					})
				}
			}
		}
	}
	layered, err := truenorth.PlaceLayered(layers)
	if err != nil {
		t.Fatal(err)
	}
	rowMajor, err := truenorth.PlaceRowMajor(62)
	if err != nil {
		t.Fatal(err)
	}
	lc := layered.WireCost(traffic)
	rc := rowMajor.WireCost(traffic)
	if lc >= rc {
		t.Fatalf("layered %v not below row-major %v", lc, rc)
	}
	improved := layered.ImproveGreedy(traffic, 2)
	if improved > lc {
		t.Fatalf("greedy worsened cost: %v -> %v", lc, improved)
	}
	cong := layered.Congestion(traffic)
	if cong.MaxLoad() <= 0 {
		t.Fatal("no congestion measured on active traffic")
	}

	// Annealing from its Hilbert seed must beat row-major, and annealing the
	// greedy-improved layered placement must never worsen it (on a layout
	// this small the topology-aware layered seed is already near-optimal, so
	// never-worsen is the meaningful bound). Every placement must satisfy the
	// conservation law: per-link crossings sum to the wire cost.
	annealed, ac, err := truenorth.PlaceAnneal(traffic, 62, 20160605)
	if err != nil {
		t.Fatal(err)
	}
	if ac >= rc {
		t.Fatalf("annealed %v not below row-major %v", ac, rc)
	}
	polished := layered.Anneal(traffic, 20160605, 8)
	if polished > improved {
		t.Fatalf("annealing worsened the improved layered placement: %v -> %v", improved, polished)
	}
	for _, p := range []*truenorth.Placement{rowMajor, layered, annealed} {
		lp := p.LinkLoads(traffic)
		wc := p.WireCost(traffic)
		if diff := lp.Total() - wc; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("conservation violated: links %v vs wire %v", lp.Total(), wc)
		}
	}
	t.Logf("wire cost: row-major %.0f, layered %.0f, improved %.0f, annealed %.0f, polished %.0f; max link load %.0f",
		rc, lc, improved, ac, polished, cong.MaxLoad())
}

// TestVarianceTheoryEndToEnd validates Eq. 14 empirically on a deployed
// neuron: the Monte-Carlo variance of the membrane sum matches the sum of
// per-synapse contribution variances.
func TestVarianceTheoryEndToEnd(t *testing.T) {
	src := rng.NewPCG32(21, 1)
	const inputs = 32
	w := make([]float64, inputs)
	x := make([]float64, inputs)
	for i := range w {
		w[i] = rng.Float64(src)*2 - 1
		x[i] = rng.Float64(src)
	}
	want := 0.0
	for i := range w {
		want += core.ContributionVariance(w[i], x[i], 1)
	}
	const trials = 200000
	var sum, sq float64
	for trial := 0; trial < trials; trial++ {
		v := 0.0
		for i := range w {
			p := math.Abs(w[i])
			if rng.Bernoulli(src, p) && rng.Bernoulli(src, x[i]) {
				if w[i] > 0 {
					v++
				} else {
					v--
				}
			}
		}
		sum += v
		sq += v * v
	}
	mean := sum / trials
	got := sq/trials - mean*mean
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("empirical variance %v vs Eq. 14 %v", got, want)
	}
	t.Logf("Eq. 14 variance %v, Monte-Carlo %v", want, got)
}
